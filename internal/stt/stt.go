// Package stt constructs rectilinear Steiner trees for multi-pin nets — the
// first step of the paper's pattern routing planning stage (Fig. 5) — and
// optimizes them with congestion-aware edge shifting. The tree's edges
// become the two-pin nets that pattern routing solves; its rooted structure
// defines the parent/child relations the dynamic program's bottom-children
// cost (eq. 2) depends on.
//
// Construction is Prim's MST over the distinct pin positions under the
// Manhattan metric followed by greedy Steinerization (median-point
// insertion), a standard FLUTE-class approximation; the contest-grade exact
// lookup tables are not reproducible offline, and the routers only consume
// the tree topology.
package stt

import (
	"fmt"
	"math"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

// Node is a vertex of a Steiner tree: a pin position or a Steiner point.
type Node struct {
	ID        int
	Pos       geom.Point
	PinLayers []int // layers of the net's pins at this position; empty for Steiner points
	Parent    int   // -1 at the root
	Children  []int
}

// IsPin reports whether the node carries at least one pin.
func (n *Node) IsPin() bool { return len(n.PinLayers) > 0 }

// Tree is a rooted rectilinear Steiner tree for one net.
type Tree struct {
	NetID int
	Nodes []Node
	Root  int
}

// Estimator supplies 2-D congestion estimates for edge shifting. It is
// satisfied by *grid.Estimator2D.
type Estimator interface {
	HSeg(y, x1, x2 int) float64
	VSeg(x, y1, y2 int) float64
	LPathCost(a, b geom.Point) float64
}

// Build constructs the Steiner tree of a net, rooted at the node holding the
// net's first pin. Duplicate pin positions are merged with their layers
// collected on one node.
func Build(net *design.Net) *Tree {
	pos := make([]geom.Point, 0, len(net.Pins))
	layers := make(map[geom.Point][]int, len(net.Pins))
	for _, p := range net.Pins {
		if _, ok := layers[p.Pos]; !ok {
			pos = append(pos, p.Pos)
		}
		layers[p.Pos] = append(layers[p.Pos], p.Layer)
	}

	var adj [][]int
	if len(pos) <= exactThreshold {
		// Exact RSMT for the 2-4 pin nets that dominate netlists (the role
		// FLUTE's lookup tables play in CUGR).
		pos, adj = exactRSMT(pos)
	} else {
		adj = primMST(pos)
		pos, adj = steinerize(pos, adj)
	}

	t := &Tree{NetID: net.ID, Nodes: make([]Node, len(pos))}
	for i, p := range pos {
		t.Nodes[i] = Node{ID: i, Pos: p, PinLayers: layers[p], Parent: -1}
	}
	t.rootAt(0, adj)
	return t
}

// primMST returns the MST adjacency lists over pts (Manhattan metric).
// O(n^2), fine for net fan-outs.
func primMST(pts []geom.Point) [][]int {
	n := len(pts)
	adj := make([][]int, n)
	if n <= 1 {
		return adj
	}
	inTree := make([]bool, n)
	dist := make([]int, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt
	}
	dist[0] = 0
	from[0] = -1
	for k := 0; k < n; k++ {
		best, bestD := -1, math.MaxInt
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			adj[best] = append(adj[best], from[best])
			adj[from[best]] = append(adj[from[best]], best)
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := geom.ManhattanDist(pts[best], pts[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return adj
}

func median3(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// steinerize greedily inserts median Steiner points: for a node u with
// neighbors v and w, the component-wise median s of (u,v,w) replaces the two
// direct edges with a star through s whenever that shortens total length.
func steinerize(pts []geom.Point, adj [][]int) ([]geom.Point, [][]int) {
	improved := true
	for pass := 0; improved && pass < 8; pass++ {
		improved = false
		for u := 0; u < len(pts); u++ {
			nbs := adj[u]
			if len(nbs) < 2 {
				continue
			}
			bestGain := 0
			bestV, bestW := -1, -1
			var bestS geom.Point
			for i := 0; i < len(nbs); i++ {
				for j := i + 1; j < len(nbs); j++ {
					v, w := nbs[i], nbs[j]
					s := geom.Point{
						X: median3(pts[u].X, pts[v].X, pts[w].X),
						Y: median3(pts[u].Y, pts[v].Y, pts[w].Y),
					}
					if s == pts[u] || s == pts[v] || s == pts[w] {
						continue
					}
					gain := geom.ManhattanDist(pts[u], pts[v]) +
						geom.ManhattanDist(pts[u], pts[w]) -
						geom.ManhattanDist(pts[u], s) -
						geom.ManhattanDist(s, pts[v]) -
						geom.ManhattanDist(s, pts[w])
					if gain > bestGain {
						bestGain, bestV, bestW, bestS = gain, v, w, s
					}
				}
			}
			if bestGain > 0 {
				sIdx := len(pts)
				pts = append(pts, bestS)
				adj = append(adj, nil)
				removeEdge(adj, u, bestV)
				removeEdge(adj, u, bestW)
				addEdge(adj, u, sIdx)
				addEdge(adj, sIdx, bestV)
				addEdge(adj, sIdx, bestW)
				improved = true
			}
		}
	}
	return pts, adj
}

func addEdge(adj [][]int, a, b int) {
	adj[a] = append(adj[a], b)
	adj[b] = append(adj[b], a)
}

func removeEdge(adj [][]int, a, b int) {
	adj[a] = removeFrom(adj[a], b)
	adj[b] = removeFrom(adj[b], a)
}

func removeFrom(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// rootAt orients the adjacency structure into a rooted tree via iterative DFS.
func (t *Tree) rootAt(root int, adj [][]int) {
	t.Root = root
	for i := range t.Nodes {
		t.Nodes[i].Parent = -1
		t.Nodes[i].Children = nil
	}
	visited := make([]bool, len(t.Nodes))
	stack := []int{root}
	visited[root] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				t.Nodes[v].Parent = u
				t.Nodes[u].Children = append(t.Nodes[u].Children, v)
				stack = append(stack, v)
			}
		}
	}
}

// adjacency reconstructs undirected adjacency lists from the rooted form.
func (t *Tree) adjacency() [][]int {
	adj := make([][]int, len(t.Nodes))
	for i := range t.Nodes {
		if p := t.Nodes[i].Parent; p >= 0 {
			addEdge(adj, i, p)
		}
	}
	return adj
}

// WL returns the total rectilinear length of the tree's edges.
func (t *Tree) WL() int {
	total := 0
	for i := range t.Nodes {
		if p := t.Nodes[i].Parent; p >= 0 {
			total += geom.ManhattanDist(t.Nodes[i].Pos, t.Nodes[p].Pos)
		}
	}
	return total
}

// NumEdges returns the number of two-pin nets the tree decomposes into.
func (t *Tree) NumEdges() int { return len(t.Nodes) - 1 }

// BBox returns the bounding box over all tree nodes.
func (t *Tree) BBox() geom.Rect {
	r := geom.NewRect(t.Nodes[0].Pos, t.Nodes[0].Pos)
	for _, n := range t.Nodes[1:] {
		r = r.Extend(n.Pos)
	}
	return r
}

// Validate checks the rooted-tree invariants: exactly one root, every
// non-root reachable from the root through consistent parent/child links,
// and every pin position present.
func (t *Tree) Validate(net *design.Net) error {
	if t.Root < 0 || t.Root >= len(t.Nodes) {
		return fmt.Errorf("stt: root %d out of range", t.Root)
	}
	if t.Nodes[t.Root].Parent != -1 {
		return fmt.Errorf("stt: root has a parent")
	}
	seen := make([]bool, len(t.Nodes))
	stack := []int{t.Root}
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			return fmt.Errorf("stt: node %d visited twice (cycle)", u)
		}
		seen[u] = true
		count++
		for _, c := range t.Nodes[u].Children {
			if t.Nodes[c].Parent != u {
				return fmt.Errorf("stt: child %d of %d has parent %d", c, u, t.Nodes[c].Parent)
			}
			stack = append(stack, c)
		}
	}
	if count != len(t.Nodes) {
		return fmt.Errorf("stt: %d of %d nodes reachable from root", count, len(t.Nodes))
	}
	have := make(map[geom.Point]bool, len(t.Nodes))
	for i := range t.Nodes {
		if t.Nodes[i].IsPin() {
			have[t.Nodes[i].Pos] = true
		}
	}
	for _, p := range net.Pins {
		if !have[p.Pos] {
			return fmt.Errorf("stt: pin at %v missing from tree", p.Pos)
		}
	}
	return nil
}

// Shift performs congestion-aware edge shifting (the planning optimization
// of Fig. 5): each Steiner point may slide to a Hanan candidate of its
// neighbors when the estimated congestion cost of its incident edges drops
// without increasing tree wirelength.
func (t *Tree) Shift(est Estimator) {
	for pass := 0; pass < 2; pass++ {
		moved := false
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.IsPin() {
				continue
			}
			var nbs []int
			if n.Parent >= 0 {
				nbs = append(nbs, n.Parent)
			}
			nbs = append(nbs, n.Children...)
			if len(nbs) == 0 {
				continue
			}
			curWL, curCost := t.starCost(est, n.Pos, nbs)
			bestPos, bestCost := n.Pos, curCost
			for _, a := range nbs {
				for _, b := range nbs {
					cand := geom.Point{X: t.Nodes[a].Pos.X, Y: t.Nodes[b].Pos.Y}
					if cand == n.Pos {
						continue
					}
					wl, cost := t.starCost(est, cand, nbs)
					if wl <= curWL && cost < bestCost-1e-9 {
						bestPos, bestCost = cand, cost
					}
				}
			}
			if bestPos != n.Pos {
				n.Pos = bestPos
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// starCost evaluates the total wirelength and estimated congestion cost of
// connecting pos to each neighbor with its cheaper L path.
func (t *Tree) starCost(est Estimator, pos geom.Point, nbs []int) (wl int, cost float64) {
	for _, nb := range nbs {
		q := t.Nodes[nb].Pos
		wl += geom.ManhattanDist(pos, q)
		cost += est.LPathCost(pos, q)
	}
	return wl, cost
}
