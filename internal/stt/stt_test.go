package stt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
)

func netOf(pts ...geom.Point) *design.Net {
	n := &design.Net{ID: 1, Name: "n"}
	for _, p := range pts {
		n.Pins = append(n.Pins, design.Pin{Pos: p, Layer: 1})
	}
	return n
}

func TestTwoPinTree(t *testing.T) {
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 3})
	tr := Build(net)
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 2 || tr.NumEdges() != 1 {
		t.Fatalf("two-pin net built %d nodes", len(tr.Nodes))
	}
	if tr.WL() != 8 {
		t.Fatalf("WL = %d, want 8", tr.WL())
	}
}

func TestDuplicatePinPositionsMerged(t *testing.T) {
	net := &design.Net{ID: 2, Name: "d", Pins: []design.Pin{
		{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		{Pos: geom.Point{X: 1, Y: 1}, Layer: 2},
		{Pos: geom.Point{X: 4, Y: 4}, Layer: 1},
	}}
	tr := Build(net)
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 2 {
		t.Fatalf("duplicate positions not merged: %d nodes", len(tr.Nodes))
	}
	var merged *Node
	for i := range tr.Nodes {
		if tr.Nodes[i].Pos == (geom.Point{X: 1, Y: 1}) {
			merged = &tr.Nodes[i]
		}
	}
	if merged == nil || len(merged.PinLayers) != 2 {
		t.Fatalf("merged node should carry 2 pin layers: %+v", merged)
	}
}

func TestSteinerPointInsertion(t *testing.T) {
	// Three pins in an L: the median point (5,0)... a star via the median
	// (5,5)? Pins (0,0), (10,0), (5,8): MST length = 10 + 13 = 23.
	// Median of the three = (5,0); star length = 5+5+13=23 via (5,0)? The
	// classic win: pins (0,0),(10,0),(5,8) -> Steiner at (5,0): 5+5+8 = 18.
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}, geom.Point{X: 5, Y: 8})
	tr := Build(net)
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
	if tr.WL() != 18 {
		t.Fatalf("WL = %d, want 18 (Steiner point at (5,0))", tr.WL())
	}
	steiner := 0
	for i := range tr.Nodes {
		if !tr.Nodes[i].IsPin() {
			steiner++
		}
	}
	if steiner != 1 {
		t.Fatalf("expected exactly 1 Steiner node, got %d", steiner)
	}
}

func TestTreeWLNeverWorseThanMSTBound(t *testing.T) {
	// Steinerization must never lengthen the tree, and the tree can never
	// beat the HPWL lower bound.
	f := func(raw []struct{ X, Y uint8 }) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		seen := map[geom.Point]bool{}
		net := &design.Net{ID: 0, Name: "q"}
		for _, r := range raw {
			p := geom.Point{X: int(r.X) % 64, Y: int(r.Y) % 64}
			if seen[p] {
				continue
			}
			seen[p] = true
			net.Pins = append(net.Pins, design.Pin{Pos: p, Layer: 1})
		}
		if len(net.Pins) < 2 {
			return true
		}
		tr := Build(net)
		if tr.Validate(net) != nil {
			return false
		}
		pts := net.Points()
		mst := mstLength(pts)
		return tr.WL() <= mst && tr.WL() >= net.BBox().HPWL()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mstLength(pts []geom.Point) int {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[0] = 0
	total := 0
	for k := 0; k < n; k++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += dist[best]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := geom.ManhattanDist(pts[best], pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

func TestRootIsFirstPin(t *testing.T) {
	net := netOf(geom.Point{X: 7, Y: 7}, geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 9})
	tr := Build(net)
	if tr.Nodes[tr.Root].Pos != (geom.Point{X: 7, Y: 7}) {
		t.Fatalf("root at %v, want first pin (7,7)", tr.Nodes[tr.Root].Pos)
	}
}

func TestLargeNetTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := &design.Net{ID: 9, Name: "big"}
	seen := map[geom.Point]bool{}
	for len(net.Pins) < 40 {
		p := geom.Point{X: rng.Intn(200), Y: rng.Intn(200)}
		if seen[p] {
			continue
		}
		seen[p] = true
		net.Pins = append(net.Pins, design.Pin{Pos: p, Layer: 1 + rng.Intn(2)})
	}
	tr := Build(net)
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != len(tr.Nodes)-1 {
		t.Fatal("edge count broken")
	}
}

func TestBBoxCoversAllNodes(t *testing.T) {
	net := netOf(geom.Point{X: 2, Y: 8}, geom.Point{X: 9, Y: 1}, geom.Point{X: 5, Y: 5})
	tr := Build(net)
	bb := tr.BBox()
	for _, n := range tr.Nodes {
		if !bb.Contains(n.Pos) {
			t.Fatalf("node %v outside bbox %+v", n.Pos, bb)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 5}, geom.Point{X: 9, Y: 2})
	tr := Build(net)
	tr.Nodes[tr.Root].Parent = 0
	if tr.Validate(net) == nil {
		t.Fatal("root-with-parent accepted")
	}
	tr = Build(net)
	// Detach a child: reachability check must fail.
	for i := range tr.Nodes {
		if len(tr.Nodes[i].Children) > 0 {
			tr.Nodes[i].Children = nil
			break
		}
	}
	if tr.Validate(net) == nil {
		t.Fatal("detached subtree accepted")
	}
}

func shiftTestGrid(t *testing.T) *grid.Graph {
	t.Helper()
	d := &design.Design{
		Name: "s", GridW: 20, GridH: 20, NumLayers: 4,
		LayerCapacity: []int{1, 10, 10, 10}, ViaCapacity: 8,
		Nets: []*design.Net{netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1})},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return grid.NewFromDesign(d)
}

func TestShiftMovesSteinerAwayFromCongestion(t *testing.T) {
	g := shiftTestGrid(t)
	// Congest row y=0 heavily on the horizontal layers.
	for x := 0; x < 19; x++ {
		for i := 0; i < 15; i++ {
			g.AddSegDemand(3, geom.Point{X: x, Y: 0}, geom.Point{X: x + 1, Y: 0}, 1)
		}
	}
	// Pins force a Steiner point at (5,0) (the congested row); shifting may
	// slide it along Hanan candidates.
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}, geom.Point{X: 5, Y: 8})
	tr := Build(net)
	wlBefore := tr.WL()
	est := g.Estimator2D()
	costBefore := treeCost(est, tr)
	tr.Shift(est)
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
	if tr.WL() > wlBefore {
		t.Fatalf("Shift increased WL: %d -> %d", wlBefore, tr.WL())
	}
	if c := treeCost(est, tr); c > costBefore+1e-9 {
		t.Fatalf("Shift increased estimated cost: %v -> %v", costBefore, c)
	}
}

func treeCost(est Estimator, tr *Tree) float64 {
	total := 0.0
	for i := range tr.Nodes {
		if p := tr.Nodes[i].Parent; p >= 0 {
			total += est.LPathCost(tr.Nodes[i].Pos, tr.Nodes[p].Pos)
		}
	}
	return total
}

func TestShiftNeverMovesPins(t *testing.T) {
	g := shiftTestGrid(t)
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}, geom.Point{X: 5, Y: 8},
		geom.Point{X: 12, Y: 12})
	tr := Build(net)
	pinPos := map[int]geom.Point{}
	for i := range tr.Nodes {
		if tr.Nodes[i].IsPin() {
			pinPos[i] = tr.Nodes[i].Pos
		}
	}
	tr.Shift(g.Estimator2D())
	for i, want := range pinPos {
		if tr.Nodes[i].Pos != want {
			t.Fatalf("pin node %d moved from %v to %v", i, want, tr.Nodes[i].Pos)
		}
	}
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOnGeneratedDesign(t *testing.T) {
	d := design.MustGenerate("18test5", 0.002)
	for _, net := range d.Nets[:200] {
		tr := Build(net)
		if err := tr.Validate(net); err != nil {
			t.Fatalf("net %s: %v", net.Name, err)
		}
	}
}
