package taskflow

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"fastgr/internal/fault"
	"fastgr/internal/obs"
	"fastgr/internal/sched"
)

// faultGraph builds an n-task graph from an explicit dependency edge
// list, reusing the struct idiom of the other taskflow tests.
func faultGraph(n int, edges [][2]int) *sched.Graph {
	g := independentGraph(n)
	for _, e := range edges {
		g.Succ[e[0]] = append(g.Succ[e[0]], e[1])
		g.Indegree[e[1]]++
		g.Edges++
	}
	return g
}

// faultChainGraph builds 0 → 1 → ... → chain-1 plus an independent tail
// of isolated tasks, so one failure poisons a known suffix while the
// rest completes.
func faultChainGraph(chain, isolated int) *sched.Graph {
	g := independentGraph(chain + isolated)
	for i := 0; i+1 < chain; i++ {
		g.Succ[i] = append(g.Succ[i], i+1)
		g.Indegree[i+1]++
		g.Edges++
	}
	return g
}

func TestFaultReportSkipsDependentsOfFailedTask(t *testing.T) {
	g := faultChainGraph(5, 3) // chain 0..4, isolated 5..7
	var mu sync.Mutex
	ran := map[int]bool{}
	rep := RunWorkersFault(g, 4, nil, nil, func(_, task int) error {
		mu.Lock()
		ran[task] = true
		mu.Unlock()
		if task == 2 {
			return &fault.WorkError{Site: fault.SiteTask, Unit: 2, Attempts: 1, Cause: errors.New("boom")}
		}
		return nil
	})
	if rep.CancelErr != nil {
		t.Fatalf("unexpected cancel: %v", rep.CancelErr)
	}
	if !reflect.DeepEqual(rep.Failed, []int{2}) {
		t.Fatalf("Failed = %v, want [2]", rep.Failed)
	}
	if !reflect.DeepEqual(rep.Skipped, []int{3, 4}) {
		t.Fatalf("Skipped = %v, want [3 4]", rep.Skipped)
	}
	if rep.Completed != 5 { // 0, 1, 5, 6, 7
		t.Fatalf("Completed = %d, want 5", rep.Completed)
	}
	if ran[3] || ran[4] {
		t.Fatal("dependents of the failed task must never run")
	}
	if we := rep.Failure(); we == nil || we.Unit != 2 {
		t.Fatalf("Failure() = %v, want unit 2", we)
	}
}

func TestFaultReportDeterministicAcrossWorkerCounts(t *testing.T) {
	// A wider graph: two diamonds sharing a failing apex dependency.
	build := func() *sched.Graph {
		return faultGraph(9, [][2]int{ // task 8 stays isolated
			{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {5, 6}, {6, 7},
		})
	}
	run := func(workers int) FaultReport {
		return RunWorkersFault(build(), workers, nil, nil, func(_, task int) error {
			if task == 1 || task == 6 {
				return &fault.WorkError{Site: fault.SiteTask, Unit: task, Attempts: 1, Cause: errors.New("boom")}
			}
			return nil
		})
	}
	ref := run(1)
	if !reflect.DeepEqual(ref.Failed, []int{1, 6}) {
		t.Fatalf("Failed = %v, want [1 6]", ref.Failed)
	}
	// 3 depends on both 1 (failed) and 2 (ok) → skipped; 4 depends on 3 →
	// skipped; 7 depends on 6 → skipped.
	if !reflect.DeepEqual(ref.Skipped, []int{3, 4, 7}) {
		t.Fatalf("Skipped = %v, want [3 4 7]", ref.Skipped)
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.Completed != ref.Completed ||
			!reflect.DeepEqual(got.Failed, ref.Failed) ||
			!reflect.DeepEqual(got.Skipped, ref.Skipped) {
			t.Fatalf("report at %d workers differs: %+v vs %+v", w, got, ref)
		}
	}
}

func TestFaultRunWithContainmentRetriesPanics(t *testing.T) {
	g := faultChainGraph(4, 0)
	reg := obs.NewRegistry()
	c := fault.New(fault.Options{Seed: 2}, &obs.Observer{Metrics: reg})
	var mu sync.Mutex
	attempts := map[int]int{}
	rep := RunWorkersFault(g, 2, nil, c, func(_, task int) error {
		mu.Lock()
		attempts[task]++
		a := attempts[task]
		mu.Unlock()
		if task == 1 && a == 1 {
			panic("transient")
		}
		if task == 2 {
			panic("permanent")
		}
		return nil
	})
	if rep.CancelErr != nil {
		t.Fatalf("unexpected cancel: %v", rep.CancelErr)
	}
	// Task 1 recovers on retry and completes; task 2 exhausts attempts
	// and fails; task 3 (dependent of 2) is skipped.
	if !reflect.DeepEqual(rep.Failed, []int{2}) {
		t.Fatalf("Failed = %v, want [2]", rep.Failed)
	}
	if !reflect.DeepEqual(rep.Skipped, []int{3}) {
		t.Fatalf("Skipped = %v, want [3]", rep.Skipped)
	}
	if rep.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", rep.Completed)
	}
	if attempts[1] != 2 {
		t.Fatalf("task 1 attempts = %d, want 2 (panic then success)", attempts[1])
	}
	if attempts[2] != fault.DefaultMaxAttempts {
		t.Fatalf("task 2 attempts = %d, want %d", attempts[2], fault.DefaultMaxAttempts)
	}
	var pe *fault.PanicError
	if we := rep.Failure(); we == nil || !errors.As(we, &pe) {
		t.Fatalf("task 2 failure should wrap a PanicError, got %v", rep.Failure())
	}
	s := reg.Snapshot()
	rec, deg := s.Counters[obs.MFaultRecovered], s.Counters[obs.MFaultDegraded]
	if rec != 1+int64(fault.DefaultMaxAttempts-1) || deg != 1 {
		t.Fatalf("recovered=%d degraded=%d, want %d/1", rec, deg, 1+fault.DefaultMaxAttempts-1)
	}
}

func TestFaultRunCancelMidGraph(t *testing.T) {
	// A long chain: a hard (non-WorkError) failure at task 3 cancels the
	// run. Everything after the cancel must settle without running.
	g := faultChainGraph(50, 10)
	hard := errors.New("hard failure")
	var mu sync.Mutex
	ran := map[int]bool{}
	rep := RunWorkersFault(g, 4, nil, nil, func(_, task int) error {
		mu.Lock()
		ran[task] = true
		mu.Unlock()
		if task == 3 {
			return hard
		}
		return nil
	})
	if rep.CancelErr != hard {
		t.Fatalf("CancelErr = %v, want the hard failure", rep.CancelErr)
	}
	for task := 4; task < 50; task++ {
		if ran[task] {
			t.Fatalf("chain task %d ran after the cancel point", task)
		}
	}
	// Every task settled exactly once: completed + failed + skipped = n.
	if got := rep.Completed + len(rep.Failed) + len(rep.Skipped); got != 60 {
		t.Fatalf("settled %d tasks, want 60", got)
	}
}

func TestFaultRunEmptyAndNilCases(t *testing.T) {
	rep := RunWorkersFault(independentGraph(0), 4, nil, nil, func(_, _ int) error { return nil })
	if rep.Completed != 0 || rep.Failure() != nil {
		t.Fatalf("empty graph report = %+v", rep)
	}
	// All tasks succeed: report is all-complete, no allocations of the
	// failure slices.
	g := faultChainGraph(6, 2)
	rep = RunWorkersFault(g, 3, nil, nil, func(_, _ int) error { return nil })
	if rep.Completed != 8 || rep.Failed != nil || rep.Skipped != nil || rep.CancelErr != nil {
		t.Fatalf("all-success report = %+v", rep)
	}
}
