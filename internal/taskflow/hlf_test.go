package taskflow

import (
	"testing"
	"time"

	"fastgr/internal/sched"
)

// TestCriticalPathFirstPriority verifies the scheduling model prioritizes
// long dependency chains over independent filler work — the property that
// lets the task graph overlap a congested hot spot's serial drain with the
// rest of the rip-up set.
func TestCriticalPathFirstPriority(t *testing.T) {
	// Chain of 10 tasks (ids 0..9) + 30 independent tasks (ids 10..39).
	n := 40
	g := &sched.Graph{
		Tasks:     make([]sched.Task, n),
		Succ:      make([][]int, n),
		Indegree:  make([]int, n),
		RootBatch: make([]bool, n),
	}
	for i := 0; i < 9; i++ {
		g.Succ[i] = []int{i + 1}
		g.Indegree[i+1] = 1
	}
	dur := make([]time.Duration, n)
	for i := 0; i < 10; i++ {
		dur[i] = 4 * time.Millisecond // chain: 40ms critical path
	}
	for i := 10; i < n; i++ {
		dur[i] = 10 * time.Millisecond // 300ms of independent work
	}
	// 8 workers: total work 340ms / 8 = 42.5ms; critical path 40ms. A
	// chain-priority schedule lands near max(42.5, 40); a schedule that
	// starves the chain behind FIFO filler would exceed 40 + 40 = 70ms.
	ms := Makespan(g, dur, 8)
	if ms > 60*time.Millisecond {
		t.Fatalf("makespan %v suggests the chain was starved", ms)
	}
	if cp := CriticalPath(g, dur); ms < cp {
		t.Fatalf("makespan %v below critical path %v", ms, cp)
	}
}

// TestMakespanWorkConservation: with one worker every schedule is the sum.
func TestMakespanWorkConservation(t *testing.T) {
	tasks := overlappingTasks(12)
	g := sched.BuildGraph(tasks, 200, 200)
	dur := make([]time.Duration, len(tasks))
	for i := range dur {
		dur[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := Makespan(g, dur, 1); got != SumDurations(dur) {
		t.Fatalf("1-worker makespan %v != sum %v", got, SumDurations(dur))
	}
}

// TestBatchMakespanStaticPartition pins down the OpenMP-style static model:
// round-robin assignment, so a skewed batch wastes workers.
func TestBatchMakespanStaticPartition(t *testing.T) {
	// One batch, 4 tasks, 2 workers. Round-robin: w0={0,2}, w1={1,3}.
	dur := durationsOf(10, 1, 10, 1)
	got := BatchMakespan([][]int{{0, 1, 2, 3}}, dur, 2)
	if got != 20*time.Millisecond {
		t.Fatalf("static batch makespan = %v, want 20ms (w0 gets both long tasks)", got)
	}
	// A dynamic schedule would do it in 11ms; the gap is the point.
}
