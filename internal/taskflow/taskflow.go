// Package taskflow executes oriented task graphs, playing the role of the
// Taskflow C++ library the paper uses for the rip-up-and-reroute stage: a
// dependency-respecting worker-pool executor plus deterministic makespan
// models for the two parallelization strategies the paper compares — the
// task-graph schedule (FastGR) and the widely adopted batch-barrier
// schedule (the CPU baseline).
package taskflow

import (
	"sync"
	"time"

	"fastgr/internal/fault"
	"fastgr/internal/obs"
	"fastgr/internal/sched"
)

// Run executes fn for every task of the graph with the given number of
// goroutine workers, never running a task before all its predecessors have
// finished. Tasks whose bounding boxes do not conflict may run concurrently;
// because conflicts were defined on the (inflated) regions each task
// touches, concurrent tasks commute and the outcome is deterministic.
func Run(g *sched.Graph, workers int, fn func(task int)) {
	RunWorkers(g, workers, func(_, task int) { fn(task) })
}

// RunWorkers is Run with worker identity: fn receives the id (in
// [0, workers)) of the goroutine executing it, so callers can keep one
// scratch object per worker — e.g. a maze.Search — without locking. A worker
// id is used by exactly one goroutine for the whole run.
func RunWorkers(g *sched.Graph, workers int, fn func(worker, task int)) {
	RunWorkersObserved(g, workers, nil, fn)
}

// RunWorkersObserved is RunWorkers with a flight recorder attached: each
// executed task records its ready-to-start latency (obs.MTaskWaitNs, the
// time between its last predecessor finishing and a worker picking it
// up) and its run duration (obs.MTaskRunNs). A nil or metrics-less
// observer adds no timing calls; observation never changes the schedule
// or the task outcomes.
func RunWorkersObserved(g *sched.Graph, workers int, o *obs.Observer, fn func(worker, task int)) {
	n := len(g.Tasks)
	if n == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}

	waitHist := o.M().Histogram(obs.MTaskWaitNs, obs.DurationBuckets)
	runHist := o.M().Histogram(obs.MTaskRunNs, obs.DurationBuckets)
	observing := waitHist != nil
	// Wall-clock reads route through the obs stopwatch (detwall): the
	// readings feed histograms only, never the schedule or the results.
	var readyAt []obs.Stopwatch
	if observing {
		readyAt = make([]obs.Stopwatch, n)
	}

	indeg := append([]int(nil), g.Indegree...)
	ready := make(chan int, n)
	for i, d := range indeg {
		if d == 0 {
			if observing {
				readyAt[i] = obs.StartStopwatch()
			}
			ready <- i
		}
	}

	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for t := range ready {
				var run obs.Stopwatch
				if observing {
					waitHist.Observe(readyAt[t].ElapsedNs())
					run = obs.StartStopwatch()
				}
				fn(worker, t)
				if observing {
					runHist.Observe(run.ElapsedNs())
				}
				mu.Lock()
				done++
				for _, v := range g.Succ[t] {
					indeg[v]--
					if indeg[v] == 0 {
						if observing {
							readyAt[v] = obs.StartStopwatch()
						}
						ready <- v
					}
				}
				if done == n {
					close(ready)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if done != n {
		panic("taskflow: executor deadlocked (cyclic graph?)")
	}
}

// FaultReport is the partial-failure outcome of RunWorkersFault: which
// tasks completed, which failed terminally, and which were skipped
// because a dependency failed. Failed, Skipped and Errs are sorted by
// task id, so the report is identical at every worker count (the
// skipped set is a pure function of the failed set and the graph).
type FaultReport struct {
	// Completed counts tasks whose body returned nil.
	Completed int
	// Failed lists tasks whose body ended in a *fault.WorkError
	// (containment exhaustion or a deliberate unit failure).
	Failed []int
	// Skipped lists tasks never run because a transitive predecessor
	// failed (or, on the cancel path, tasks abandoned mid-run).
	Skipped []int
	// Errs holds the terminal error of each failed task, parallel to
	// Failed.
	Errs []*fault.WorkError
	// CancelErr is the first (lowest task id) non-WorkError a body
	// returned; non-nil means the run was aborted, remaining tasks were
	// drained unrun, and the rest of the report describes a partial,
	// timing-dependent state the caller must discard.
	CancelErr error
}

// Failure returns the lowest-task-id terminal error, nil when every
// scheduled task completed.
func (r *FaultReport) Failure() *fault.WorkError {
	if len(r.Errs) == 0 {
		return nil
	}
	return r.Errs[0]
}

// RunWorkersFault is RunWorkersObserved for fallible tasks: each body
// runs under the containment layer (when armed), a task's terminal
// *fault.WorkError poisons its dependents — they are skipped, never
// run — and the run still settles every task, so a failing graph
// completes with a partial-failure report instead of wedging the
// executor. Any other body error cancels the run: remaining ready tasks
// drain unrun and CancelErr reports the cause. Task ids, not goroutine
// interleavings, key injection and ordering, so for a fixed fault seed
// the Completed/Failed/Skipped partition is identical at every worker
// count (except after a cancel, which is an abort path).
func RunWorkersFault(g *sched.Graph, workers int, o *obs.Observer, c *fault.Containment, fn func(worker, task int) error) FaultReport {
	var rep FaultReport
	n := len(g.Tasks)
	if n == 0 {
		return rep
	}
	if workers < 1 {
		workers = 1
	}

	waitHist := o.M().Histogram(obs.MTaskWaitNs, obs.DurationBuckets)
	runHist := o.M().Histogram(obs.MTaskRunNs, obs.DurationBuckets)
	observing := waitHist != nil
	var readyAt []obs.Stopwatch
	if observing {
		readyAt = make([]obs.Stopwatch, n)
	}

	indeg := append([]int(nil), g.Indegree...)
	poisoned := make([]bool, n)
	ready := make(chan int, n)

	var mu sync.Mutex
	done := 0
	canceled := false

	// settleLocked finishes task t (mu held): it counts toward done,
	// poisons dependents when it did not succeed, and either enqueues or
	// cascades-skips each dependent that becomes ready. The cascade is
	// iterative (an explicit stack) so a long poisoned chain cannot
	// overflow the goroutine stack, and skipping happens here — under the
	// settle lock, in dependency order — so the skipped set never depends
	// on which worker observed the failure.
	var stack []int
	settleLocked := func(t int, ok bool) {
		stack = append(stack[:0], t)
		okAt := map[int]bool{t: ok}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			done++
			if done == n {
				close(ready)
			}
			for _, v := range g.Succ[u] {
				if !okAt[u] {
					poisoned[v] = true
				}
				indeg[v]--
				if indeg[v] != 0 {
					continue
				}
				if poisoned[v] || canceled {
					rep.Skipped = append(rep.Skipped, v)
					okAt[v] = false
					stack = append(stack, v)
					continue
				}
				if observing {
					readyAt[v] = obs.StartStopwatch()
				}
				ready <- v
			}
		}
	}

	for i, d := range indeg {
		if d == 0 {
			if observing {
				readyAt[i] = obs.StartStopwatch()
			}
			ready <- i
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for t := range ready {
				mu.Lock()
				drain := canceled
				mu.Unlock()
				var err error
				if drain {
					// Abort path: don't run, just settle so the run ends.
				} else if c.Enabled() {
					err = c.Run(fault.SiteTask, t, worker, func() error { return fn(worker, t) })
				} else {
					var run obs.Stopwatch
					if observing {
						waitHist.Observe(readyAt[t].ElapsedNs())
						run = obs.StartStopwatch()
					}
					err = fn(worker, t)
					if observing {
						runHist.Observe(run.ElapsedNs())
					}
				}
				mu.Lock()
				switch we := err.(type) {
				case nil:
					if drain {
						rep.Skipped = append(rep.Skipped, t)
						settleLocked(t, false)
					} else {
						rep.Completed++
						settleLocked(t, true)
					}
				case *fault.WorkError:
					rep.Failed = append(rep.Failed, t)
					rep.Errs = append(rep.Errs, we)
					settleLocked(t, false)
				default:
					if !canceled {
						canceled = true
						rep.CancelErr = err
					}
					rep.Skipped = append(rep.Skipped, t)
					settleLocked(t, false)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if done != n {
		panic("taskflow: executor deadlocked (cyclic graph?)")
	}

	sortInts(rep.Failed)
	sortInts(rep.Skipped)
	sortErrs(rep.Errs)
	return rep
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortErrs(errs []*fault.WorkError) { fault.SortWorkErrors(errs) }

// Makespan simulates critical-path-first list scheduling of the task graph
// on P workers with the given per-task durations: a task becomes ready when
// its last predecessor finishes, and among ready tasks the one heading the
// longest remaining dependency chain starts first (highest-level-first, the
// textbook DAG scheduling heuristic). This is the deterministic model behind
// the reported parallel-CPU times (see DESIGN.md).
func Makespan(g *sched.Graph, durations []time.Duration, workers int) time.Duration {
	n := len(g.Tasks)
	if n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	// Upward rank: longest path from the task to any sink, inclusive.
	rank := make([]time.Duration, n)
	order := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		var best time.Duration
		for _, v := range g.Succ[u] {
			if rank[v] > best {
				best = rank[v]
			}
		}
		rank[u] = best + durations[u]
	}

	indeg := append([]int(nil), g.Indegree...)
	readyAt := make([]time.Duration, n) // max finish time of predecessors
	finish := make([]time.Duration, n)

	type item struct {
		task int
		at   time.Duration
	}
	ready := make([]item, 0, n)
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, item{i, 0})
		}
	}
	workerFree := make([]time.Duration, workers)
	var makespan time.Duration
	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			panic("taskflow: makespan model starved (cyclic graph?)")
		}
		// Pick the schedulable task with the highest upward rank. A task can
		// start at max(its ready time, earliest worker free time); among
		// tasks startable at the earliest such instant, prefer the longest
		// remaining chain (ties by task ID for determinism).
		w := 0
		for k := 1; k < workers; k++ {
			if workerFree[k] < workerFree[w] {
				w = k
			}
		}
		// Earliest possible start over all ready tasks.
		bestStart := time.Duration(1<<63 - 1)
		for _, it := range ready {
			start := workerFree[w]
			if it.at > start {
				start = it.at
			}
			if start < bestStart {
				bestStart = start
			}
		}
		sel := -1
		for idx, it := range ready {
			start := workerFree[w]
			if it.at > start {
				start = it.at
			}
			if start != bestStart {
				continue
			}
			if sel < 0 || rank[it.task] > rank[ready[sel].task] ||
				(rank[it.task] == rank[ready[sel].task] && it.task < ready[sel].task) {
				sel = idx
			}
		}
		it := ready[sel]
		ready = append(ready[:sel], ready[sel+1:]...)

		start := workerFree[w]
		if it.at > start {
			start = it.at
		}
		end := start + durations[it.task]
		workerFree[w] = end
		finish[it.task] = end
		if end > makespan {
			makespan = end
		}
		scheduled++
		for _, v := range g.Succ[it.task] {
			if finish[it.task] > readyAt[v] {
				readyAt[v] = finish[it.task]
			}
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, item{v, readyAt[v]})
			}
		}
	}
	return makespan
}

// BatchMakespan models the baseline batch-barrier strategy the paper calls
// the "widely adopted batch-based parallelization": batches execute one
// after another with a full barrier between them, and inside a batch tasks
// are statically partitioned round-robin over P workers (OpenMP-style
// static scheduling) — no work stealing, so a skewed partition leaves
// workers idle at the barrier.
func BatchMakespan(batches [][]int, durations []time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	var total time.Duration
	for _, batch := range batches {
		load := make([]time.Duration, workers)
		for i, t := range batch {
			load[i%workers] += durations[t]
		}
		var batchEnd time.Duration
		for _, l := range load {
			if l > batchEnd {
				batchEnd = l
			}
		}
		total += batchEnd
	}
	return total
}

// CriticalPath returns the graph's dependency-chain lower bound — no
// schedule on any worker count can beat it.
func CriticalPath(g *sched.Graph, durations []time.Duration) time.Duration {
	order := g.TopoOrder()
	longest := make([]time.Duration, len(g.Tasks))
	var cp time.Duration
	for _, u := range order {
		end := longest[u] + durations[u]
		if end > cp {
			cp = end
		}
		for _, v := range g.Succ[u] {
			if end > longest[v] {
				longest[v] = end
			}
		}
	}
	return cp
}

// SumDurations is the sequential (one worker) execution time.
func SumDurations(durations []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range durations {
		s += d
	}
	return s
}
