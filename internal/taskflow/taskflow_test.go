package taskflow

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"fastgr/internal/geom"
	"fastgr/internal/obs"
	"fastgr/internal/sched"
)

// chainGraph builds 0 -> 1 -> 2 ... -> n-1.
func chainGraph(n int) *sched.Graph {
	g := &sched.Graph{
		Tasks:     make([]sched.Task, n),
		Succ:      make([][]int, n),
		Indegree:  make([]int, n),
		RootBatch: make([]bool, n),
	}
	for i := 0; i < n-1; i++ {
		g.Succ[i] = []int{i + 1}
		g.Indegree[i+1] = 1
		g.Edges++
	}
	return g
}

// independentGraph builds n tasks with no edges.
func independentGraph(n int) *sched.Graph {
	return &sched.Graph{
		Tasks:     make([]sched.Task, n),
		Succ:      make([][]int, n),
		Indegree:  make([]int, n),
		RootBatch: make([]bool, n),
	}
}

func overlappingTasks(n int) []sched.Task {
	tasks := make([]sched.Task, n)
	for i := range tasks {
		// Staircase: task i overlaps task i+1 only.
		lo := geom.Point{X: i * 4, Y: i * 4}
		hi := geom.Point{X: i*4 + 5, Y: i*4 + 5}
		tasks[i] = sched.Task{ID: i, BBox: geom.NewRect(lo, hi)}
	}
	return tasks
}

func TestRunExecutesAllRespectingDeps(t *testing.T) {
	g := chainGraph(50)
	var mu sync.Mutex
	var order []int
	Run(g, 4, func(task int) {
		mu.Lock()
		order = append(order, task)
		mu.Unlock()
	})
	if len(order) != 50 {
		t.Fatalf("executed %d of 50", len(order))
	}
	for i, task := range order {
		if task != i {
			t.Fatalf("chain executed out of order at %d: %d", i, task)
		}
	}
}

func TestRunParallelCounts(t *testing.T) {
	g := independentGraph(200)
	var n int64
	Run(g, 8, func(task int) { atomic.AddInt64(&n, 1) })
	if n != 200 {
		t.Fatalf("executed %d of 200", n)
	}
}

func TestRunDependencyOrderProperty(t *testing.T) {
	tasks := overlappingTasks(30)
	g := sched.BuildGraph(tasks, 200, 200)
	finished := make([]int64, len(tasks))
	var stamp int64
	Run(g, 6, func(task int) {
		finished[task] = atomic.AddInt64(&stamp, 1)
	})
	for u := range g.Succ {
		for _, v := range g.Succ[u] {
			if finished[u] >= finished[v] {
				t.Fatalf("task %d finished after its successor %d", u, v)
			}
		}
	}
}

func TestRunEmptyAndSingleWorker(t *testing.T) {
	Run(independentGraph(0), 4, func(int) { t.Fatal("called on empty graph") })
	count := 0
	Run(chainGraph(5), 0, func(int) { count++ }) // workers clamped to 1
	if count != 5 {
		t.Fatalf("single-worker run executed %d", count)
	}
}

func durationsOf(ms ...int) []time.Duration {
	d := make([]time.Duration, len(ms))
	for i, m := range ms {
		d[i] = time.Duration(m) * time.Millisecond
	}
	return d
}

func TestMakespanChainEqualsSum(t *testing.T) {
	g := chainGraph(4)
	d := durationsOf(1, 2, 3, 4)
	if got := Makespan(g, d, 8); got != 10*time.Millisecond {
		t.Fatalf("chain makespan = %v, want 10ms", got)
	}
	if got := CriticalPath(g, d); got != 10*time.Millisecond {
		t.Fatalf("critical path = %v", got)
	}
}

func TestMakespanIndependentPerfectSplit(t *testing.T) {
	g := independentGraph(4)
	d := durationsOf(5, 5, 5, 5)
	if got := Makespan(g, d, 4); got != 5*time.Millisecond {
		t.Fatalf("independent makespan on 4 workers = %v, want 5ms", got)
	}
	if got := Makespan(g, d, 2); got != 10*time.Millisecond {
		t.Fatalf("independent makespan on 2 workers = %v, want 10ms", got)
	}
	if got := Makespan(g, d, 1); got != SumDurations(d) {
		t.Fatalf("1-worker makespan = %v, want sum", got)
	}
}

func TestMakespanDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3; durations 1, 5, 5, 1: two workers run 1 and 2 in
	// parallel: 1 + 5 + 1 = 7ms.
	g := independentGraph(4)
	g.Succ[0] = []int{1, 2}
	g.Succ[1] = []int{3}
	g.Succ[2] = []int{3}
	g.Indegree[1], g.Indegree[2], g.Indegree[3] = 1, 1, 2
	d := durationsOf(1, 5, 5, 1)
	if got := Makespan(g, d, 2); got != 7*time.Millisecond {
		t.Fatalf("diamond makespan = %v, want 7ms", got)
	}
}

func TestBatchMakespan(t *testing.T) {
	// Two batches; barrier forces sum of per-batch maxima.
	batches := [][]int{{0, 1}, {2, 3}}
	d := durationsOf(3, 7, 2, 2)
	if got := BatchMakespan(batches, d, 4); got != 9*time.Millisecond {
		t.Fatalf("batch makespan = %v, want 9ms", got)
	}
	// With one worker the barrier does not matter: sum of everything.
	if got := BatchMakespan(batches, d, 1); got != 14*time.Millisecond {
		t.Fatalf("1-worker batch makespan = %v, want 14ms", got)
	}
}

func TestTaskGraphBeatsBatchBarrier(t *testing.T) {
	// The paper's core scheduling claim (2.501x in Table VIII): with skewed
	// durations the barrier wastes workers, the DAG does not. Staircase
	// conflicts: batches alternate {0,2,4,...},{1,3,5,...}; the DAG only
	// chains neighbors.
	tasks := overlappingTasks(24)
	g := sched.BuildGraph(tasks, 200, 200)
	ids := make([]int, len(tasks))
	durations := make([]time.Duration, len(tasks))
	for i := range tasks {
		ids[i] = i
		if i%6 == 0 {
			durations[i] = 20 * time.Millisecond // a few long tasks
		} else {
			durations[i] = 2 * time.Millisecond
		}
	}
	taskSlices := make([]sched.Task, len(tasks))
	copy(taskSlices, tasks)
	batches := sched.ExtractBatches(taskSlices)
	idBatches := make([][]int, len(batches))
	for i, b := range batches {
		for _, task := range b {
			idBatches[i] = append(idBatches[i], task.ID)
		}
	}
	dag := Makespan(g, durations, 16)
	bar := BatchMakespan(idBatches, durations, 16)
	if dag > bar {
		t.Fatalf("task graph (%v) slower than batch barrier (%v)", dag, bar)
	}
	if cp := CriticalPath(g, durations); dag < cp {
		t.Fatalf("makespan %v below critical path %v", dag, cp)
	}
}

func TestMakespanBounds(t *testing.T) {
	// Property: critical path <= makespan <= sequential sum; more workers
	// never hurt.
	f := func(raw []uint8, w uint8) bool {
		n := len(raw)
		if n == 0 || n > 40 {
			return true
		}
		tasks := overlappingTasks(n)
		g := sched.BuildGraph(tasks, 400, 400)
		d := make([]time.Duration, n)
		for i, r := range raw {
			d[i] = time.Duration(int(r)%20+1) * time.Millisecond
		}
		workers := int(w)%8 + 1
		ms := Makespan(g, d, workers)
		if ms < CriticalPath(g, d) || ms > SumDurations(d) {
			return false
		}
		return Makespan(g, d, workers+4) <= ms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if Makespan(independentGraph(0), nil, 4) != 0 {
		t.Fatal("empty makespan not zero")
	}
	if BatchMakespan(nil, nil, 4) != 0 {
		t.Fatal("empty batch makespan not zero")
	}
}

// TestRunWorkersObserved checks the wait/run histograms: every task
// contributes one observation to each, and dependencies still hold.
func TestRunWorkersObserved(t *testing.T) {
	const n = 40
	g := chainGraph(n)
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	var mu sync.Mutex
	var order []int
	RunWorkersObserved(g, 4, o, func(_, task int) {
		mu.Lock()
		order = append(order, task)
		mu.Unlock()
	})
	if len(order) != n {
		t.Fatalf("executed %d tasks, want %d", len(order), n)
	}
	for i, task := range order {
		if task != i {
			t.Fatalf("chain executed out of order at %d: %v", i, order)
		}
	}
	s := o.Metrics.Snapshot()
	wait, run := s.Histograms[obs.MTaskWaitNs], s.Histograms[obs.MTaskRunNs]
	if wait.Count != n || run.Count != n {
		t.Fatalf("wait/run counts = %d/%d, want %d each", wait.Count, run.Count, n)
	}
	if wait.Min < 0 || run.Min < 0 {
		t.Fatalf("negative durations: wait min %d, run min %d", wait.Min, run.Min)
	}
}
