// Package viz renders routing state as standalone SVG documents: the 2-D
// congestion map, individual routed nets (layer-colored wires and via
// markers), and Steiner trees. Global-routing papers live and die by these
// pictures; the renderers here use only the standard library and write
// deterministic output, so golden files are stable.
package viz

import (
	"fmt"
	"io"
	"sort"

	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// cellPx is the size of one G-cell in SVG pixels.
const cellPx = 8

// layerColors assigns a stable color per metal layer (1-based; cycled).
var layerColors = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// LayerColor returns the drawing color of a metal layer.
func LayerColor(layer int) string {
	return layerColors[(layer-1)%len(layerColors)]
}

type svg struct {
	w    io.Writer
	errs []error
}

func (s *svg) printf(format string, args ...interface{}) {
	if _, err := fmt.Fprintf(s.w, format, args...); err != nil {
		s.errs = append(s.errs, err)
	}
}

func (s *svg) open(w, h int) {
	s.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		w*cellPx, h*cellPx, w*cellPx, h*cellPx)
	s.printf(`<rect width="100%%" height="100%%" fill="#ffffff"/>` + "\n")
}

func (s *svg) close() error {
	s.printf("</svg>\n")
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	return nil
}

func center(p geom.Point) (float64, float64) {
	return float64(p.X)*cellPx + cellPx/2, float64(p.Y)*cellPx + cellPx/2
}

// WriteCongestionSVG renders the collapsed 2-D utilization heat map: white
// (empty) through yellow to red (at or over capacity).
func WriteCongestionSVG(w io.Writer, g *grid.Graph) error {
	s := &svg{w: w}
	s.open(g.W, g.H)
	cells := g.CongestionMap2D()
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			c := cells[y*g.W+x]
			if c.Demand == 0 {
				continue
			}
			u := 1.0
			if c.Capacity > 0 {
				u = float64(c.Demand) / float64(c.Capacity)
			}
			if u > 1 {
				u = 1
			}
			// White -> yellow -> red ramp.
			var r, gr, b int
			if u < 0.5 {
				r, gr, b = 255, 255, int(255*(1-2*u))
			} else {
				r, gr, b = 255, int(255*(2-2*u)), 0
			}
			s.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`+"\n",
				x*cellPx, y*cellPx, cellPx, cellPx, r, gr, b)
		}
	}
	return s.close()
}

// WriteRouteSVG renders one or more routed nets: wires colored by layer,
// vias as black circles, optional pin markers.
func WriteRouteSVG(w io.Writer, g *grid.Graph, routes []*route.NetRoute, pins []geom.Point3) error {
	s := &svg{w: w}
	s.open(g.W, g.H)
	// Deterministic draw order: lower layers first so upper layers overlay.
	type wire struct {
		layer int
		a, b  geom.Point
	}
	var wires []wire
	var vias []geom.Point
	for _, r := range routes {
		if r == nil {
			continue
		}
		for _, p := range r.Paths {
			for _, sg := range p.Segs {
				wires = append(wires, wire{sg.Layer, sg.A, sg.B})
			}
			for _, v := range p.Vias {
				vias = append(vias, geom.Point{X: v.X, Y: v.Y})
			}
		}
	}
	sort.SliceStable(wires, func(i, j int) bool { return wires[i].layer < wires[j].layer })
	for _, wr := range wires {
		x1, y1 := center(wr.a)
		x2, y2 := center(wr.b)
		s.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2.4" stroke-linecap="round"/>`+"\n",
			x1, y1, x2, y2, LayerColor(wr.layer))
	}
	for _, v := range vias {
		x, y := center(v)
		s.printf(`<circle cx="%.1f" cy="%.1f" r="2.2" fill="#000000"/>`+"\n", x, y)
	}
	for _, p := range pins {
		x, y := center(p.P())
		s.printf(`<rect x="%.1f" y="%.1f" width="5" height="5" fill="none" stroke="#000000" stroke-width="1"/>`+"\n",
			x-2.5, y-2.5)
	}
	return s.close()
}

// WriteTreeSVG renders a Steiner tree: pins as squares, Steiner points as
// hollow circles, edges as gray lines.
func WriteTreeSVG(w io.Writer, gridW, gridH int, t *stt.Tree) error {
	s := &svg{w: w}
	s.open(gridW, gridH)
	for i := range t.Nodes {
		if p := t.Nodes[i].Parent; p >= 0 {
			x1, y1 := center(t.Nodes[i].Pos)
			x2, y2 := center(t.Nodes[p].Pos)
			s.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888888" stroke-width="1.6"/>`+"\n",
				x1, y1, x2, y2)
		}
	}
	for i := range t.Nodes {
		x, y := center(t.Nodes[i].Pos)
		if t.Nodes[i].IsPin() {
			s.printf(`<rect x="%.1f" y="%.1f" width="6" height="6" fill="#1f77b4"/>`+"\n", x-3, y-3)
		} else {
			s.printf(`<circle cx="%.1f" cy="%.1f" r="3" fill="none" stroke="#d62728" stroke-width="1.5"/>`+"\n", x, y)
		}
	}
	return s.close()
}
