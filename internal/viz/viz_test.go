package viz

import (
	"bytes"
	"strings"
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

func routedResult(t *testing.T) *core.Result {
	t.Helper()
	d := design.MustGenerate("18test5m", 0.003)
	opt := core.DefaultOptions(core.FastGRL)
	opt.T1, opt.T2 = 5, 27
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCongestionSVG(t *testing.T) {
	res := routedResult(t)
	var buf bytes.Buffer
	if err := WriteCongestionSVG(&buf, res.Grid); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	if !strings.Contains(out, "<rect") {
		t.Fatal("no heat cells rendered despite committed demand")
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := WriteCongestionSVG(&buf2, res.Grid); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("congestion SVG not deterministic")
	}
}

func TestRouteSVG(t *testing.T) {
	res := routedResult(t)
	n := res.Design.Nets[0]
	var buf bytes.Buffer
	pins := route.PinTerminals(res.Trees[n.ID])
	if err := WriteRouteSVG(&buf, res.Grid, []*route.NetRoute{res.Routes[n.ID]}, pins); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<line") {
		t.Fatal("no wires rendered")
	}
	if !strings.Contains(out, "stroke=\""+LayerColor(1)+"\"") &&
		!strings.Contains(out, "stroke=\""+LayerColor(2)+"\"") &&
		!strings.Contains(out, "stroke=\""+LayerColor(3)+"\"") {
		t.Fatal("no layer colors present")
	}
	// Nil routes are skipped, not fatal.
	var buf2 bytes.Buffer
	if err := WriteRouteSVG(&buf2, res.Grid, []*route.NetRoute{nil}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSVG(t *testing.T) {
	net := &design.Net{ID: 1, Name: "n", Pins: []design.Pin{
		{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
		{Pos: geom.Point{X: 10, Y: 0}, Layer: 1},
		{Pos: geom.Point{X: 5, Y: 8}, Layer: 1},
	}}
	tree := stt.Build(net)
	var buf bytes.Buffer
	if err := WriteTreeSVG(&buf, 16, 16, tree); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<rect x=") < 3 {
		t.Fatal("pin markers missing")
	}
	if !strings.Contains(out, "<circle") {
		t.Fatal("Steiner point marker missing (this net has one at (5,0))")
	}
}

func TestLayerColorCycles(t *testing.T) {
	if LayerColor(1) == "" || LayerColor(1) != LayerColor(11) {
		t.Fatal("layer colors should cycle every 10 layers")
	}
	if LayerColor(1) == LayerColor(2) {
		t.Fatal("adjacent layers share a color")
	}
}
