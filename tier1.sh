#!/bin/sh
# Tier-1 verification: the gate every PR must keep green.
# Vet + build + full test suite, then the race detector over the packages
# that execute host-parallel (the determinism contract is only meaningful
# if it holds under -race).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/par ./internal/core ./internal/taskflow
