#!/bin/sh
# Tier-1 verification: the gate every PR must keep green.
# Vet + build + full test suite, then the race detector over the packages
# that execute host-parallel (the determinism contract is only meaningful
# if it holds under -race; internal/core includes the tracing-enabled
# determinism suite, internal/obs the concurrent recorder tests), and
# finally the observability overhead guard: benchgen -obs fails if the
# disabled-mode cost on the pattern-stage batch workload exceeds 2%.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/par ./internal/core ./internal/taskflow ./internal/obs
go run ./cmd/benchgen -obs -o BENCH_obs.json
