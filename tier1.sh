#!/bin/sh
# Tier-1 verification: the gate every PR must keep green.
#
#   vet        — go vet (tests included) across the tree
#   build      — everything compiles
#   test       — the full test suite (includes TestLintTreeClean and the
#                ExecWorkers determinism sweeps)
#   race        — the race detector over every package that executes
#                 host-parallel: the par pool itself, core's tracing-enabled
#                 determinism suite AND its seeded chaos suite (every variant
#                 under fault injection at 1/2/8 workers), the taskflow
#                 executor, the concurrent obs recorders, sched + maze, which
#                 run under the pool from core's parallel sections, grid,
#                 whose cost-cache invalidation flags are mutated from
#                 concurrent rip-up windows, fault, the containment
#                 layer whose counters are hit from every worker, and
#                 shard, whose plans and splits are read from every leaf
#                 slot (core's TestShardDeterminism drives the sharded
#                 pipeline itself at 1/2/8 workers under -race), the
#                 prom exposition renderer, opsrv, whose live-scrape
#                 test hammers /metrics, /healthz and /tracez from a
#                 scraper goroutine while a full 19test9m run routes,
#                 and serve, the fastgrd job pipeline whose overload
#                 test saturates admission, cancels mid-run jobs and
#                 drains while HTTP clients hammer the handlers
#   lint        — fastgrlint, the static invariant net (determinism +
#                 passive observability + recover-hygiene contracts, plus
#                 the interprocedural flow checks: walltaint, writeroute,
#                 shardisolation, promdrift), gofmt verification on
#   lint-self   — fastgrlint -self: the analyzer's own packages must be
#                 clean under the default policy and the fixture module
#                 must reproduce its golden file
#   bench-obs   — observability overhead guard: benchgen -obs fails if the
#                 disabled-mode cost on the pattern-stage batch workload
#                 exceeds 2%
#   bench-lint  — records analyzer cost (files/sec, per-check wall time)
#                 into BENCH_lint.json and fails if the full suite costs
#                 more than 2x the pre-flow-layer baseline
#   bench-maze  — maze kernel guard: benchgen -maze fails unless A* on a
#                 warm cost cache beats the seed Dijkstra-cold config by
#                 1.5x with fewer expansions
#   bench-fault — fault containment overhead guard: benchgen -fault fails
#                 if arming the layer with injection disabled costs more
#                 than 2% on the pattern or maze workloads
#   bench-shard — sharded routing guard: benchgen -shard sweeps sharded
#                 vs monolithic on the largest harness design and fails
#                 if the K=4 peak-heap delta exceeds half the monolithic
#                 one or quality drifts more than 10%
#   bench-serve — daemon overhead guard: benchgen -serve fails if routing
#                 a job through the fastgrd pipeline (journal, queue,
#                 guide artifact) costs more than 5% over direct
#                 core.Route; also records p50/p99 job latency at
#                 1/4/16 concurrent submitters
#   bench-regress — regression watchdog: benchgen -regress re-validates
#                 every BENCH_*.json just regenerated above against its
#                 own recorded gates and diffs the gated metrics against
#                 the committed HEAD baselines (refusing cross-host or
#                 cross-schema comparisons; drift only warns)
#
# Every step runs even after a failure, and the trailer prints one
# PASS/FAIL line per step so a red build is attributable at a glance.
set -u

fail=0
summary=""

step() {
    name=$1
    shift
    echo "==> $name: $*"
    if "$@"; then
        summary="$summary
$name: PASS"
    else
        summary="$summary
$name: FAIL"
        fail=1
    fi
}

step vet        go vet -tests=true ./...
step build      go build ./...
step test       go test ./...
step race       go test -race ./internal/par ./internal/core ./internal/taskflow ./internal/obs ./internal/obs/prom ./internal/obs/opsrv ./internal/sched ./internal/maze ./internal/grid ./internal/fault ./internal/shard ./internal/serve
step lint       go run ./cmd/fastgrlint -fmt ./...
step lint-self  go run ./cmd/fastgrlint -self
step bench-obs  go run ./cmd/benchgen -obs -o BENCH_obs.json
step bench-lint go run ./cmd/benchgen -lint -o BENCH_lint.json
step bench-maze go run ./cmd/benchgen -maze -o BENCH_maze.json
step bench-fault go run ./cmd/benchgen -fault -o BENCH_fault.json
step bench-shard go run ./cmd/benchgen -shard -o BENCH_shard.json
step bench-serve go run ./cmd/benchgen -serve -o BENCH_serve.json
step bench-regress go run ./cmd/benchgen -regress

echo "== tier1 summary ==$summary"
exit $fail
